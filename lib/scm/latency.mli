(** Calibrated busy-wait used for optional latency injection: when
    [Config.current.delay_injection] is on, each simulated SCM miss
    spins for (SCM latency − DRAM latency), so wall-clock runs feel the
    latency knob like the paper's emulation platform. *)

val spins_per_ns : unit -> float
(** Spin-loop iterations per nanosecond; calibrated on first use
    (domain-safe: concurrent first calls serialize on a mutex). *)

val busy_wait_ns : float -> unit

(** Injected by the region on each simulated read miss. *)
val on_scm_read_miss : unit -> unit

(** Injected by the region on each line write-back. *)
val on_scm_write_back : unit -> unit
