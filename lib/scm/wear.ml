(** Wear reporting over the attribution matrix and the spatial
    heatmap: write amplification, line-write skew, hottest lines.

    SCM media wear out per line; a production deployment cares not just
    about how many lines were written ([Stats]) but whether the medium
    wears evenly and which component is responsible (cf. NV-Tree's
    write-amplification analysis, wBTree's per-structure persist
    accounting).  This module turns the raw telemetry — the
    [Obs.Attrib] (component × op) matrix plus a region's per-line
    shadow counts — into that report:

    - {b write amplification}: media bytes written
      (64 × lines flushed) over payload bytes stored
      ([scm_store_bytes_total]).  >1 because persists flush whole
      lines; the micro-log and bitmap commits are the usual drivers.
    - {b skew}: max/mean line-write counts and the Gini coefficient
      over touched lines (0 = perfectly even wear, →1 = a few lines
      absorb everything — the endurance hazard).
    - {b hottest lines}: top-k by write count, each with the bitmask
      of components that wrote it.

    The heatmap may be sampled ([Config.heatmap_sample_shift]); counts
    here are reported {e as recorded} (callers scale by [2^shift] when
    they need absolute estimates), and the report carries the shift. *)

type line_stat = { line : int; count : int; comps : int }

type report = {
  store_bytes : int;       (* payload bytes stored, instrumented paths *)
  line_writes : int;       (* lines flushed (global counter) *)
  flushes : int;
  persists : int;
  write_amplification : float;  (* 64 * line_writes / store_bytes *)
  lines_touched : int;     (* heatmap lines with a non-zero count *)
  max_line_writes : int;   (* heatmap counts, as recorded (sampled) *)
  mean_line_writes : float;
  gini : float;            (* skew over touched lines; 0 = even *)
  sample_shift : int;      (* heatmap_sample_shift at report time *)
  top : line_stat list;    (* hottest lines, descending count *)
}

let comp_names_of_mask mask =
  let acc = ref [] in
  for c = Obs.Attrib.n_comps - 1 downto 0 do
    if mask land (1 lsl c) <> 0 then acc := Obs.Attrib.comp_name.(c) :: !acc
  done;
  !acc

(* Gini coefficient of the non-zero counts: with the counts sorted
   ascending (1-based rank i), G = 2*Σ(i*x_i) / (n*Σx) − (n+1)/n. *)
let gini counts =
  let xs = List.sort compare counts in
  let n = List.length xs in
  if n = 0 then 0.
  else begin
    let sum = List.fold_left ( + ) 0 xs in
    if sum = 0 then 0.
    else begin
      let weighted = ref 0 in
      List.iteri (fun i x -> weighted := !weighted + ((i + 1) * x)) xs;
      (2. *. float_of_int !weighted /. (float_of_int n *. float_of_int sum))
      -. (float_of_int (n + 1) /. float_of_int n)
    end
  end

let top_k ~k counts comps =
  let stats = ref [] in
  Array.iteri
    (fun line c ->
      if c > 0 then stats := { line; count = c; comps = comps.(line) } :: !stats)
    counts;
  let sorted =
    List.sort
      (fun a b ->
        match compare b.count a.count with 0 -> compare a.line b.line | c -> c)
      !stats
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take k sorted

let report ?(k = 10) region =
  let s = Stats.snapshot () in
  let store_bytes = Stats.store_bytes () in
  let counts, comps =
    match Region.heatmap region with
    | Some (c, m) -> (c, m)
    | None -> ([||], [||])
  in
  let touched = ref 0 and maxc = ref 0 and sumc = ref 0 in
  let nonzero = ref [] in
  Array.iter
    (fun c ->
      if c > 0 then begin
        incr touched;
        sumc := !sumc + c;
        if c > !maxc then maxc := c;
        nonzero := c :: !nonzero
      end)
    counts;
  {
    store_bytes;
    line_writes = s.Stats.line_writes;
    flushes = s.Stats.flushes;
    persists = s.Stats.persists;
    write_amplification =
      (if store_bytes = 0 then 0.
       else
         float_of_int (Cacheline.line_size * s.Stats.line_writes)
         /. float_of_int store_bytes);
    lines_touched = !touched;
    max_line_writes = !maxc;
    mean_line_writes =
      (if !touched = 0 then 0.
       else float_of_int !sumc /. float_of_int !touched);
    gini = gini !nonzero;
    sample_shift = Config.current.heatmap_sample_shift;
    top = top_k ~k counts comps;
  }

(* ---- exactness cross-check: matrix sums vs the global counters ---- *)

type check_row = { quantity : string; global : int; matrix : int }

(** The headline invariant: each whole-matrix sum must equal its global
    [scm_*_total] counter {e exactly} (both are charged by the same
    [Stats] increment).  Any drift means an attribution charge was
    dropped or double-counted — tests and the bench_check [wear] stage
    fail on it. *)
let crosscheck () =
  let s = Stats.snapshot () in
  [
    {
      quantity = "store_bytes";
      global = Stats.store_bytes ();
      matrix = Obs.Attrib.(total q_bytes);
    };
    {
      quantity = "line_writes";
      global = s.Stats.line_writes;
      matrix = Obs.Attrib.(total q_lines);
    };
    {
      quantity = "flushes";
      global = s.Stats.flushes;
      matrix = Obs.Attrib.(total q_flushes);
    };
    {
      quantity = "persists";
      global = s.Stats.persists;
      matrix = Obs.Attrib.(total q_persists);
    };
  ]

let crosscheck_ok rows = List.for_all (fun r -> r.global = r.matrix) rows

(* ---- heatmap JSON (sparse; round-trips through Obs.Json.parse) ---- *)

let heatmap_to_json region =
  let cells =
    match Region.heatmap region with
    | None -> []
    | Some (counts, comps) ->
      let acc = ref [] in
      for line = Array.length counts - 1 downto 0 do
        if counts.(line) > 0 then
          acc :=
            Obs.Json.Obj
              [
                ("line", Obs.Json.Int line);
                ("count", Obs.Json.Int counts.(line));
                ( "comps",
                  Obs.Json.Arr
                    (List.map
                       (fun n -> Obs.Json.Str n)
                       (comp_names_of_mask comps.(line))) );
              ]
            :: !acc
      done;
      !acc
  in
  Obs.Json.Obj
    [
      ("region", Obs.Json.Int (Region.id region));
      ("lines", Obs.Json.Int (Region.heat_lines region));
      ("sample_shift", Obs.Json.Int Config.current.heatmap_sample_shift);
      ("cells", Obs.Json.Arr cells);
    ]

(** Parse a heatmap dump back into sparse [(line, count, comp_mask)]
    cells (ascending line order).  Unknown component names raise
    [Obs.Json.Parse_error]. *)
let heatmap_of_json j =
  let comp_index name =
    let rec find i =
      if i >= Obs.Attrib.n_comps then
        raise
          (Obs.Json.Parse_error (Printf.sprintf "unknown component %S" name))
      else if Obs.Attrib.comp_name.(i) = name then i
      else find (i + 1)
    in
    find 0
  in
  Obs.Json.member "cells" j |> Obs.Json.to_list
  |> List.map (fun cell ->
         let line = Obs.Json.(to_int (member "line" cell)) in
         let count = Obs.Json.(to_int (member "count" cell)) in
         let comps =
           Obs.Json.member "comps" cell |> Obs.Json.to_list
           |> List.fold_left
                (fun m c -> m lor (1 lsl comp_index (Obs.Json.to_string_val c)))
                0
         in
         (line, count, comps))

(** The region's current sparse cells in the same shape
    [heatmap_of_json] returns — the round-trip comparand. *)
let heatmap_cells region =
  match Region.heatmap region with
  | None -> []
  | Some (counts, comps) ->
    let acc = ref [] in
    for line = Array.length counts - 1 downto 0 do
      if counts.(line) > 0 then
        acc := (line, counts.(line), comps.(line)) :: !acc
    done;
    !acc

(* ---- pretty report ---- *)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>store_bytes         %d@,\
     line_writes         %d  (%d media bytes)@,\
     flushes             %d@,\
     persists            %d@,\
     write_amplification %.3f@,\
     lines_touched       %d@,\
     max/mean line writes %d / %.2f  (sample_shift %d)@,\
     gini                %.4f@]"
    r.store_bytes r.line_writes
    (Cacheline.line_size * r.line_writes)
    r.flushes r.persists r.write_amplification r.lines_touched
    r.max_line_writes r.mean_line_writes r.sample_shift r.gini
