(** Global configuration of the SCM simulator: the latency model,
    crash-simulation mode, crash-point injection, and the optional
    busy-wait delay injection — the knobs of the paper's evaluation
    platform. *)

(** Raised by [Region.persist] when a scheduled crash point is reached;
    the raising persist did NOT reach the persistence domain. *)
exception Crash_injected

type crash_mode =
  | Revert_all_dirty
      (** Worst case: every unflushed word loses its post-crash value. *)
  | Keep_random_subset of int
      (** Eviction-adversarial: each dirty word independently survives
          with probability 1/2 (seeded). *)

type t = {
  mutable scm_read_ns : float;
  mutable scm_write_ns : float;
  mutable dram_read_ns : float;
  mutable crash_tracking : bool;
  mutable stats : bool;
  mutable delay_injection : bool;
  mutable tracing : bool;
  mutable crash_after_persists : int option;
  mutable persist_count : int;
  mutable skip_nth_persist : int option;
  mutable skip_count : int;
  mutable torn_nth_store : int option;
  mutable torn_count : int;
  mutable torn_seed : int;
  mutable model_check : bool;
      (** Change through {!set_model_check} (generation-witnessed). *)
  mutable backoff_seed : int option;
      (** [Some s] pins [Speculative_lock] backoff jitter to a pure
          function of (s, attempt, domain slot), so equal-seed runs
          report identical [backoff_waits]; [None] (default) keeps the
          free-running per-domain Weyl sequence.  Set by direct field
          assignment (no hot path caches it). *)
  mutable soft_watermark : float;
      (** Capacity admission threshold as a fraction of the arena's
          usable bytes (default 0.9): past it, allocating operations
          are refused with [`Out_of_space] while reads, in-place
          updates and deletes keep serving.  Plain field — it gates no
          region accessor, so no generation bump; set by direct
          assignment. *)
  mutable flight_sample_shift : int;
      (** Flight-recorder latency sampling: every [2^shift]-th find
          records a measured begin/end pair, the rest a marker-only
          event.  Default 4 (the historical 1/16 ratio); 0 measures
          every find.  Plain field, set by direct assignment. *)
  mutable wear_heatmap : bool;
      (** Record the per-region spatial write heatmap (line-granularity
          shadow counts) on the instrumented persist path.  Off by
          default; plain field, set by direct assignment. *)
  mutable heatmap_sample_shift : int;
      (** Heatmap sampling: count every [2^shift]-th flushed line
          (default 0 = exact).  Reported counts are scaled back by
          [2^shift].  Plain field, set by direct assignment. *)
}

val default : unit -> t

(** The live configuration, read by every simulator operation.

    The instrumentation switches ([stats], [crash_tracking],
    [delay_injection]) must be changed through the setters below, never
    by direct field assignment: the setters bump {!mode_generation},
    which is how regions learn that their cached fast/instrumented mode
    witness is stale. *)
val current : t

(** Generation counter of the instrumentation switches; bumped by
    {!set_stats}, {!set_crash_tracking}, {!set_delay_injection},
    {!set_tracing} and {!reset}.  Read per-access by {!Region}'s mode
    witness check. *)
val mode_generation : int ref

(** Also flips {!Obs.Attrib}'s scope gate, so write-attribution scopes
    are live exactly when the counters they feed are. *)
val set_stats : bool -> unit

val set_crash_tracking : bool -> unit
val set_delay_injection : bool -> unit

(** Enable {!Pmtrace} event recording (pmcheck sanitizer input). *)
val set_tracing : bool -> unit

(** Route the concurrency protocol's shared-memory accesses (version
    cells, leaf-lock words, fallback mutex, root swap) through the
    [Htm.Sched] shim so the mcheck model checker can interleave them at
    every access.  Off (default): production paths pay one load + branch
    per shared access, nothing else changes. *)
val set_model_check : bool -> unit

val reset : unit -> unit
val set_latency : ?write_ns:float -> read_ns:float -> unit -> unit

(** Arm the crash injector: the [n]-th persist from now raises
    {!Crash_injected} (1-based). *)
val schedule_crash_after : int -> unit

val disarm_crash : unit -> unit

(** Called by [Region.persist] at each persistence point. *)
val on_persist : unit -> unit

(** Arm the missing-persist fault injector: the [n]-th persist from now
    (1-based) is silently dropped — no flush, no trace event, no crash
    point.  Used by [Pmcheck.Enumerate] to prove the analyzer catches a
    forgotten [Persist()] in every operation. *)
val schedule_persist_skip : int -> unit

val cancel_persist_skip : unit -> unit

(** Called by [Region.persist] before anything else; [true] means the
    current persist must be dropped entirely. *)
val persist_skipped : unit -> bool

(** {1 Torn-write injection}

    Models hardware without the aligned-8-byte p-atomicity guarantee
    the paper assumes (Section 2, "Partial writes"): the [n]-th
    tearable store (any non-p-atomic multi-byte store on the
    instrumented path) crashes mid-store — a deterministic byte prefix
    reaches the persistence domain, the suffix does not — and
    {!Crash_injected} is raised.  [Region.write_int64_atomic] /
    [write_word_atomic] never tear. *)

val schedule_torn_store : ?seed:int -> int -> unit
val cancel_torn_store : unit -> unit

(** [true] while a torn store is scheduled (cheap pre-check for
    regions). *)
val torn_armed : unit -> bool

(** Count one tearable store; [true] when it is the armed one (the
    injector disarms itself). *)
val torn_fires : unit -> bool
