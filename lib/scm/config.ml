(** Global configuration of the SCM simulator.

    The paper's evaluation platform exposes a single knob — the latency
    of the emulated SCM region — plus the implicit semantics of the
    volatility chain.  This module exposes the same knobs:

    - latency model used to convert access counts into modeled time;
    - crash-simulation mode (how unflushed words behave at a crash);
    - crash injection (fail at the n-th persistence point), used by the
      recovery property tests;
    - optional busy-wait delay injection for end-to-end runs. *)

(** Raised by [Region.persist] when a scheduled crash point is reached.
    The persist that raises did NOT reach the persistence domain. *)
exception Crash_injected

type crash_mode =
  | Revert_all_dirty
      (** Worst case: every unflushed word loses its post-crash value. *)
  | Keep_random_subset of int
      (** Eviction-adversarial: each dirty word independently survives
          with probability 1/2, drawn from the seeded generator.  Models
          arbitrary cache evictions before the crash. *)

type t = {
  mutable scm_read_ns : float;      (** SCM load latency (paper: 90–650). *)
  mutable scm_write_ns : float;     (** SCM store/flush latency. *)
  mutable dram_read_ns : float;     (** Baseline DRAM latency (paper: 90). *)
  mutable crash_tracking : bool;
      (** Track dirty words for crash simulation.  Off for concurrent
          benches (the tracking table is not synchronized). *)
  mutable stats : bool;             (** Count line accesses. *)
  mutable delay_injection : bool;
      (** Busy-wait [scm_read_ns - dram_read_ns] on each simulated SCM
          miss, so wall-clock time directly reflects the latency knob. *)
  mutable tracing : bool;
      (** Record every SCM store, flush and persistence annotation in
          {!Pmtrace} (the pmcheck sanitizer's input). *)
  mutable crash_after_persists : int option;
      (** [Some n]: the n-th subsequent persist raises {!Crash_injected}
          (1-based; [Some 1] fails the very next persist). *)
  mutable persist_count : int;
  mutable skip_nth_persist : int option;
      (** Fault injection for pmcheck: [Some n] silently turns the n-th
          subsequent persist into a no-op — the "forgotten Persist()"
          mutation the trace analyzer must catch. *)
  mutable skip_count : int;
  mutable torn_nth_store : int option;
      (** Torn-write injection: [Some n] makes the n-th subsequent
          tearable store (any non-p-atomic multi-byte store on the
          instrumented path) crash mid-store — a prefix of its bytes
          reaches the persistence domain, the rest does not, and
          {!Crash_injected} is raised.  P-atomic aligned 8-byte stores
          ([Region.write_int64_atomic] / [write_word_atomic]) never
          tear, matching Section 2's "Partial writes" contract. *)
  mutable torn_count : int;
  mutable torn_seed : int;
      (** Decides, deterministically, how many bytes of the torn store
          survive. *)
  mutable model_check : bool;
      (** Route every shared-memory access of the concurrency protocol
          (version cells, leaf-lock words, fallback mutex, root swap)
          through the {!Htm.Sched} shim so a cooperative model checker
          can interleave them.  Production paths pay one load + branch
          when off — same gating pattern as [tracing]. *)
  mutable backoff_seed : int option;
      (** [Some s]: [Speculative_lock] backoff jitter becomes a pure
          function of (s, attempt, domain slot) instead of the
          free-running per-domain Weyl cell, so two runs with the same
          seed produce identical [backoff_waits].  Pinned by the chaos
          and mcheck harnesses; [None] (default) keeps the
          cross-acquisition drift that de-synchronizes real domains. *)
  mutable soft_watermark : float;
      (** Capacity admission threshold as a fraction of the arena's
          usable bytes: once live+bump usage passes this fraction,
          allocating operations (inserts, splitting updates) are
          refused with [`Out_of_space] while reads, in-place updates
          and deletes keep running.  Plain field (gates no region
          accessor, so no generation bump); default 0.9. *)
  mutable flight_sample_shift : int;
      (** Flight-recorder latency sampling: every [2^shift]-th find
          records a measured begin/end pair with clock reads, the rest
          a marker-only event (default 4, the historical 1/16 ratio).
          Plain field — the sampling branch re-reads it per op, so no
          generation bump; clamp is the caller's business ([0] means
          every find is measured). *)
  mutable wear_heatmap : bool;
      (** Record a per-region, line-granularity shadow count of flushed
          lines (the spatial wear heatmap) on the instrumented persist
          path.  Plain field read inside the already-instrumented flush
          loop, so no generation bump; off by default — the shadow
          arrays cost size/64 words per region when first touched. *)
  mutable heatmap_sample_shift : int;
      (** Heatmap sampling: count every [2^shift]-th flushed line
          (default 0 = exact counts).  Reported counts are scaled back
          by [2^shift]; sampling trades spatial exactness for lower
          instrumented-path cost on long runs. *)
}

let default () = {
  scm_read_ns = 90.;
  scm_write_ns = 90.;
  dram_read_ns = 90.;
  crash_tracking = true;
  stats = true;
  delay_injection = false;
  tracing = false;
  crash_after_persists = None;
  persist_count = 0;
  skip_nth_persist = None;
  skip_count = 0;
  torn_nth_store = None;
  torn_count = 0;
  torn_seed = 0;
  model_check = false;
  backoff_seed = None;
  soft_watermark = 0.9;
  flight_sample_shift = 4;
  wear_heatmap = false;
  heatmap_sample_shift = 0;
}

let current = default ()

(* Bumped on every change to the instrumentation switches below.  Each
   region captures (generation, fast?) as a witness when it is touched
   and re-derives it only when the generation moved, so the hot-path
   accessors pay one integer compare instead of re-reading the whole
   configuration per access. *)
let mode_generation = ref 1

let set_stats b =
  (* Attribution scopes gate on the same switch as the counters they
     feed: unconditional, so a direct [current.stats] write followed by
     a same-value [set_stats] still lands the gate in the right state. *)
  Obs.Attrib.set_enabled b;
  if current.stats <> b then begin
    current.stats <- b;
    incr mode_generation
  end

let set_crash_tracking b =
  if current.crash_tracking <> b then begin
    current.crash_tracking <- b;
    incr mode_generation
  end

let set_delay_injection b =
  if current.delay_injection <> b then begin
    current.delay_injection <- b;
    incr mode_generation
  end

let set_tracing b =
  if current.tracing <> b then begin
    current.tracing <- b;
    incr mode_generation
  end

let set_model_check b =
  if current.model_check <> b then begin
    current.model_check <- b;
    incr mode_generation
  end

let reset () =
  let d = default () in
  current.scm_read_ns <- d.scm_read_ns;
  current.scm_write_ns <- d.scm_write_ns;
  current.dram_read_ns <- d.dram_read_ns;
  set_crash_tracking d.crash_tracking;
  set_stats d.stats;
  set_delay_injection d.delay_injection;
  set_tracing d.tracing;
  set_model_check d.model_check;
  current.backoff_seed <- d.backoff_seed;
  current.soft_watermark <- d.soft_watermark;
  current.flight_sample_shift <- d.flight_sample_shift;
  current.wear_heatmap <- d.wear_heatmap;
  current.heatmap_sample_shift <- d.heatmap_sample_shift;
  current.crash_after_persists <- d.crash_after_persists;
  current.persist_count <- d.persist_count;
  current.skip_nth_persist <- d.skip_nth_persist;
  current.skip_count <- d.skip_count;
  current.torn_nth_store <- d.torn_nth_store;
  current.torn_count <- d.torn_count;
  current.torn_seed <- d.torn_seed

let set_latency ?write_ns ~read_ns () =
  current.scm_read_ns <- read_ns;
  current.scm_write_ns <- (match write_ns with Some w -> w | None -> read_ns)

(** Arm the crash injector: the [n]-th persist from now raises. *)
let schedule_crash_after n =
  current.persist_count <- 0;
  current.crash_after_persists <- Some n

let disarm_crash () = current.crash_after_persists <- None

(** Arm the missing-persist injector: the [n]-th persist from now is
    silently dropped (no flush, no trace event, no crash-point). *)
let schedule_persist_skip n =
  current.skip_count <- 0;
  current.skip_nth_persist <- Some n

let cancel_persist_skip () = current.skip_nth_persist <- None

(** Called by [Region.persist] before anything else; [true] means this
    persist must be dropped entirely. *)
let persist_skipped () =
  match current.skip_nth_persist with
  | None -> false
  | Some n ->
    current.skip_count <- current.skip_count + 1;
    if current.skip_count = n then begin
      current.skip_nth_persist <- None;
      true
    end
    else false

(** Arm the torn-store injector: the [n]-th tearable store from now
    (1-based) tears — its byte prefix becomes durable, the rest is
    lost, and {!Crash_injected} is raised mid-store.  [seed] decides
    the tear point. *)
let schedule_torn_store ?(seed = 0) n =
  current.torn_count <- 0;
  current.torn_seed <- seed;
  current.torn_nth_store <- Some n

let cancel_torn_store () = current.torn_nth_store <- None

(** [true] while a torn store is scheduled: regions consult this before
    paying for the per-store countdown. *)
let[@inline] torn_armed () = current.torn_nth_store <> None

(** Called by [Region] on each tearable store while armed; [true] means
    this store is the one that must tear (the injector disarms). *)
let torn_fires () =
  match current.torn_nth_store with
  | None -> false
  | Some n ->
    current.torn_count <- current.torn_count + 1;
    if current.torn_count >= n then begin
      current.torn_nth_store <- None;
      true
    end
    else false

(** Called by [Region.persist]; raises {!Crash_injected} at the armed
    persistence point. *)
let on_persist () =
  match current.crash_after_persists with
  | None -> ()
  | Some n ->
    current.persist_count <- current.persist_count + 1;
    if current.persist_count >= n then begin
      current.crash_after_persists <- None;
      raise Crash_injected
    end
